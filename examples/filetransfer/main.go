// Filetransfer: the §6 link-layer protocol over a real UDP socket pair.
//
// A sender process-half segments each datagram into CRC-protected code
// blocks, spinal-encodes them, and streams frames over UDP to a receiver
// half in the same process; the "air" between them is simulated by AWGN
// noise plus whole-frame loss applied at the receiver. ACKs flow back
// over UDP with one bit per code block (§6), and the sender stops
// transmitting blocks as they are acknowledged — rateless operation end
// to end.
//
// With -flows N > 1, N independent datagrams are multiplexed over the
// same socket pair: every UDP payload carries a flow ID, the receiver
// demultiplexes into per-flow link receivers, and the sender interleaves
// all flows' frames, aggregating goodput across them.
//
// Run with:
//
//	go run ./examples/filetransfer [-snr 10] [-loss 0.2] [-size 1500] [-flows 4]
package main

import (
	"bytes"
	"encoding/gob"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"spinal"
	"spinal/internal/channel"
	"spinal/internal/framing"
	"spinal/internal/link"
)

func main() {
	snrDB := flag.Float64("snr", 10, "simulated channel SNR in dB")
	loss := flag.Float64("loss", 0.2, "whole-frame loss probability")
	size := flag.Int("size", 1500, "datagram size in bytes per flow")
	flows := flag.Int("flows", 1, "concurrent datagrams multiplexed over the socket pair")
	flag.Parse()
	if *flows < 1 {
		*flows = 1
	}

	rng := rand.New(rand.NewSource(7))
	datagrams := make([][]byte, *flows)
	for i := range datagrams {
		datagrams[i] = make([]byte, *size)
		rng.Read(datagrams[i])
	}

	rxAddr := startReceiver(*snrDB, *loss, datagrams)
	runSender(rxAddr, datagrams)
}

// wire is the gob-encoded UDP payload: a flow ID plus either a data frame
// or an ACK.
type wire struct {
	Flow  int
	Frame *link.Frame
	Ack   *framing.Ack
	From  string // sender's ACK return address
}

func udpSocket() (*net.UDPConn, *net.UDPAddr) {
	addr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		log.Fatal(err)
	}
	return conn, conn.LocalAddr().(*net.UDPAddr)
}

func send(conn *net.UDPConn, to *net.UDPAddr, w wire) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		log.Fatal(err)
	}
	if _, err := conn.WriteToUDP(buf.Bytes(), to); err != nil {
		log.Fatal(err)
	}
}

func recv(conn *net.UDPConn) wire {
	buf := make([]byte, 1<<20)
	n, _, err := conn.ReadFromUDP(buf)
	if err != nil {
		log.Fatal(err)
	}
	var w wire
	if err := gob.NewDecoder(bytes.NewReader(buf[:n])).Decode(&w); err != nil {
		log.Fatal(err)
	}
	return w
}

func startReceiver(snrDB, loss float64, want [][]byte) *net.UDPAddr {
	conn, addr := udpSocket()
	go func() {
		p := spinal.DefaultParams()
		rcvs := make([]*link.Receiver, len(want))
		verified := make([]bool, len(want))
		for i := range rcvs {
			rcvs[i] = link.NewReceiver(p)
		}
		air := channel.NewAWGN(snrDB, 99)
		drop := rand.New(rand.NewSource(100))
		for {
			w := recv(conn)
			if w.Frame == nil || w.Flow < 0 || w.Flow >= len(rcvs) {
				continue
			}
			ret, err := net.ResolveUDPAddr("udp", w.From)
			if err != nil {
				log.Fatal(err)
			}
			// Simulate the radio: whole-frame loss, then per-symbol noise.
			if drop.Float64() < loss {
				continue // erased frame; no ACK either
			}
			rcv := rcvs[w.Flow]
			noisy := *w.Frame
			noisy.Batches = applyNoise(w.Frame.Batches, air)
			ack, herr := rcv.HandleFrame(&noisy)
			if herr != nil && !errors.Is(herr, link.ErrStaleFrame) {
				continue
			}
			send(conn, ret, wire{Flow: w.Flow, Ack: &ack})
			if !verified[w.Flow] && rcv.Complete() {
				got, err := rcv.Datagram()
				if err != nil {
					log.Fatal(err)
				}
				if !bytes.Equal(got, want[w.Flow]) {
					log.Fatalf("receiver: flow %d datagram corrupted", w.Flow)
				}
				verified[w.Flow] = true
			}
		}
	}()
	return addr
}

func applyNoise(batches []link.Batch, air *channel.AWGN) []link.Batch {
	out := make([]link.Batch, len(batches))
	for i, b := range batches {
		out[i] = link.Batch{Block: b.Block, IDs: b.IDs, Symbols: air.Transmit(b.Symbols)}
	}
	return out
}

// deadline is the per-frame ACK wait; short because the "air" is a
// loopback socket.
func deadline() time.Time { return time.Now().Add(200 * time.Millisecond) }

func runSender(rx *net.UDPAddr, datagrams [][]byte) {
	conn, myAddr := udpSocket()
	p := spinal.DefaultParams()

	// One goroutine demultiplexes ACKs to per-flow channels; flow workers
	// interleave their frames over the shared socket.
	acks := make([]chan framing.Ack, len(datagrams))
	for i := range acks {
		acks[i] = make(chan framing.Ack, 8)
	}
	go func() {
		buf := make([]byte, 1<<16)
		for {
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				return // socket closed: transfer done
			}
			var w wire
			if err := gob.NewDecoder(bytes.NewReader(buf[:n])).Decode(&w); err != nil || w.Ack == nil {
				continue
			}
			if w.Flow >= 0 && w.Flow < len(acks) {
				select {
				case acks[w.Flow] <- *w.Ack:
				default: // slow flow; a fresher ACK will follow
				}
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	totalFrames, totalSymbols, totalBytes := 0, 0, 0
	for fi, datagram := range datagrams {
		wg.Add(1)
		go func() {
			defer wg.Done()
			snd := link.NewSender(datagram, p, 0)
			frames := 0
			for !snd.Done() {
				f := snd.NextFrame()
				if f == nil {
					break
				}
				frames++
				send(conn, rx, wire{Flow: fi, Frame: f, From: myAddr.String()})
				// Pause for feedback (§6): wait briefly for an ACK; resume
				// on timeout (the frame or its ACK may have been lost).
				timer := time.NewTimer(time.Until(deadline()))
				select {
				case ack := <-acks[fi]:
					snd.HandleAck(ack)
				case <-timer.C:
				}
				timer.Stop()
				if frames > 10000 {
					log.Fatalf("flow %d: giving up after 10000 frames", fi)
				}
			}
			mu.Lock()
			totalFrames += frames
			totalSymbols += snd.SymbolsSent()
			totalBytes += len(datagram)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("transferred %d bytes over %d flows in %d frames, %d symbols (%.3f bits/symbol, %.0f B/s goodput)\n",
		totalBytes, len(datagrams), totalFrames, totalSymbols,
		float64(totalBytes*8)/float64(totalSymbols),
		float64(totalBytes)/elapsed.Seconds())
}
