// Filetransfer: the §6 link-layer protocol over a real UDP socket pair.
//
// A sender process-half segments a datagram into CRC-protected code
// blocks, spinal-encodes each, and streams frames over UDP to a receiver
// half in the same process; the "air" between them is simulated by AWGN
// noise plus whole-frame loss applied at the receiver. ACKs flow back
// over UDP with one bit per code block (§6), and the sender stops
// transmitting blocks as they are acknowledged — rateless operation end
// to end.
//
// Run with:
//
//	go run ./examples/filetransfer [-snr 10] [-loss 0.2] [-size 1500]
package main

import (
	"bytes"
	"encoding/gob"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"spinal"
	"spinal/internal/channel"
	"spinal/internal/framing"
	"spinal/internal/link"
)

func main() {
	snrDB := flag.Float64("snr", 10, "simulated channel SNR in dB")
	loss := flag.Float64("loss", 0.2, "whole-frame loss probability")
	size := flag.Int("size", 1500, "datagram size in bytes")
	flag.Parse()

	rng := rand.New(rand.NewSource(7))
	datagram := make([]byte, *size)
	rng.Read(datagram)

	rxAddr := startReceiver(*snrDB, *loss, datagram)
	runSender(rxAddr, datagram)
}

// wire is the gob-encoded UDP payload: either a data frame or an ACK.
type wire struct {
	Frame *link.Frame
	Ack   *framing.Ack
	From  string // sender's ACK return address
}

func udpSocket() (*net.UDPConn, *net.UDPAddr) {
	addr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		log.Fatal(err)
	}
	return conn, conn.LocalAddr().(*net.UDPAddr)
}

func send(conn *net.UDPConn, to *net.UDPAddr, w wire) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		log.Fatal(err)
	}
	if _, err := conn.WriteToUDP(buf.Bytes(), to); err != nil {
		log.Fatal(err)
	}
}

func recv(conn *net.UDPConn) wire {
	buf := make([]byte, 1<<20)
	n, _, err := conn.ReadFromUDP(buf)
	if err != nil {
		log.Fatal(err)
	}
	var w wire
	if err := gob.NewDecoder(bytes.NewReader(buf[:n])).Decode(&w); err != nil {
		log.Fatal(err)
	}
	return w
}

func startReceiver(snrDB, loss float64, want []byte) *net.UDPAddr {
	conn, addr := udpSocket()
	go func() {
		p := spinal.DefaultParams()
		rcv := link.NewReceiver(p)
		air := channel.NewAWGN(snrDB, 99)
		drop := rand.New(rand.NewSource(100))
		for {
			w := recv(conn)
			if w.Frame == nil {
				continue
			}
			ret, err := net.ResolveUDPAddr("udp", w.From)
			if err != nil {
				log.Fatal(err)
			}
			// Simulate the radio: whole-frame loss, then per-symbol noise.
			if drop.Float64() < loss {
				continue // erased frame; no ACK either
			}
			noisy := *w.Frame
			noisy.Batches = applyNoise(w.Frame.Batches, air)
			ack := rcv.HandleFrame(&noisy)
			send(conn, ret, wire{Ack: &ack})
			if rcv.Complete() {
				got, err := rcv.Datagram()
				if err != nil {
					log.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					log.Fatal("receiver: datagram corrupted")
				}
			}
		}
	}()
	return addr
}

func applyNoise(batches []link.Batch, air *channel.AWGN) []link.Batch {
	out := make([]link.Batch, len(batches))
	for i, b := range batches {
		out[i] = link.Batch{Block: b.Block, IDs: b.IDs, Symbols: air.Transmit(b.Symbols)}
	}
	return out
}

// deadline is the per-frame ACK wait; short because the "air" is a
// loopback socket.
func deadline() time.Time { return time.Now().Add(200 * time.Millisecond) }

func runSender(rx *net.UDPAddr, datagram []byte) {
	conn, myAddr := udpSocket()
	p := spinal.DefaultParams()
	snd := link.NewSender(datagram, p, 0)

	frames := 0
	for !snd.Done() {
		f := snd.NextFrame()
		if f == nil {
			break
		}
		frames++
		send(conn, rx, wire{Frame: f, From: myAddr.String()})
		// Pause for feedback (§6): wait briefly for an ACK; resume on
		// timeout (the frame or its ACK may have been lost).
		conn.SetReadDeadline(deadline())
		ackBuf := make([]byte, 1<<16)
		n, _, err := conn.ReadFromUDP(ackBuf)
		if err == nil {
			var w wire
			if err := gob.NewDecoder(bytes.NewReader(ackBuf[:n])).Decode(&w); err == nil && w.Ack != nil {
				snd.HandleAck(*w.Ack)
			}
		}
		if frames > 10000 {
			log.Fatal("giving up after 10000 frames")
		}
	}
	fmt.Printf("transferred %d bytes in %d frames, %d symbols (%.3f bits/symbol)\n",
		len(datagram), frames, snd.SymbolsSent(),
		float64(len(datagram)*8)/float64(snd.SymbolsSent()))
}
