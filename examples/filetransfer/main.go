// Filetransfer: the §6 link-layer protocol over a real UDP socket pair,
// built on the public spinal/link Sender/Receiver state machines and
// their wire codec — the same bytes a real transport would carry
// (EncodeFrame/DecodeFrame forward, EncodeAck/DecodeAck back), not a
// simulation-only serialization.
//
// A sender process-half segments each datagram into CRC-protected code
// blocks, spinal-encodes them, and streams frames over UDP to a receiver
// half in the same process; the "air" between them is simulated by AWGN
// noise plus whole-frame loss applied at the receiver. ACKs flow back
// over UDP with one bit per code block (§6), and the sender stops
// transmitting blocks as they are acknowledged — rateless operation end
// to end.
//
// With -flows N > 1, N independent datagrams are multiplexed over the
// same socket pair: every UDP payload carries a flow ID, the receiver
// demultiplexes into per-flow link receivers, and the sender interleaves
// all flows' frames, aggregating goodput across them.
//
// Both socket loops are bounded: the receiver reads under a deadline and
// exits when told the transfer is over (it keeps re-acking until then,
// in case the sender lost a final ack and retries), and the sender gives
// up a flow after a bounded run of consecutive silent ack waits instead
// of retrying forever. A lost datagram can cost retries, never a hang.
//
// Run with:
//
//	go run ./examples/filetransfer [-snr 10] [-loss 0.2] [-size 1500] [-flows 4]
package main

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"spinal"
	"spinal/channel"
	"spinal/link"
)

func main() {
	snrDB := flag.Float64("snr", 10, "simulated channel SNR in dB")
	loss := flag.Float64("loss", 0.2, "whole-frame loss probability")
	size := flag.Int("size", 1500, "datagram size in bytes per flow")
	flows := flag.Int("flows", 1, "concurrent datagrams multiplexed over the socket pair")
	flag.Parse()
	if *flows < 1 {
		*flows = 1
	}

	rng := rand.New(rand.NewSource(7))
	datagrams := make([][]byte, *flows)
	for i := range datagrams {
		datagrams[i] = make([]byte, *size)
		rng.Read(datagrams[i])
	}

	rxAddr, rxStop, rxDone := startReceiver(*snrDB, *loss, datagrams)
	runSender(rxAddr, datagrams)
	// The transfer is complete; release the receiver loop. It notices at
	// its next read-deadline tick — the termination path that keeps a
	// lost final ack from leaving it blocked in ReadFromUDP forever.
	close(rxStop)
	<-rxDone
}

// UDP payload layout: one kind byte (frame or ack), a little-endian u32
// flow ID, then the link wire codec's bytes.
const (
	kindFrame = 0
	kindAck   = 1
)

func pack(kind byte, flow int, wire []byte) []byte {
	buf := make([]byte, 5, 5+len(wire))
	buf[0] = kind
	binary.LittleEndian.PutUint32(buf[1:], uint32(flow))
	return append(buf, wire...)
}

func unpack(buf []byte) (kind byte, flow int, wire []byte, ok bool) {
	if len(buf) < 5 {
		return 0, 0, nil, false
	}
	return buf[0], int(binary.LittleEndian.Uint32(buf[1:])), buf[5:], true
}

func udpSocket() (*net.UDPConn, *net.UDPAddr) {
	addr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		log.Fatal(err)
	}
	return conn, conn.LocalAddr().(*net.UDPAddr)
}

func startReceiver(snrDB, loss float64, want [][]byte) (*net.UDPAddr, chan struct{}, chan struct{}) {
	conn, addr := udpSocket()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer conn.Close()
		p := spinal.DefaultParams()
		rcvs := make([]*link.Receiver, len(want))
		verified := make([]bool, len(want))
		for i := range rcvs {
			rcvs[i] = link.NewReceiver(p)
		}
		air := channel.NewAWGN(snrDB, 99)
		drop := rand.New(rand.NewSource(100))
		buf := make([]byte, 1<<20)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Read under a deadline so the loop always regains control: a
			// receiver whose sender went quiet (final ack lost, sender gave
			// up) must notice stop instead of blocking forever.
			conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			n, from, err := conn.ReadFromUDP(buf)
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					continue
				}
				log.Fatal(err)
			}
			kind, flow, wire, ok := unpack(buf[:n])
			if !ok || kind != kindFrame || flow < 0 || flow >= len(rcvs) {
				continue
			}
			f, err := link.DecodeFrame(wire)
			if err != nil {
				continue // hostile or truncated datagram; drop it
			}
			// Simulate the radio: whole-frame loss, then per-symbol noise.
			if drop.Float64() < loss {
				continue // erased frame; no ACK either
			}
			rcv := rcvs[flow]
			noisy := *f
			noisy.Batches = applyNoise(f.Batches, air)
			ack, herr := rcv.HandleFrame(&noisy)
			if herr != nil && !errors.Is(herr, link.ErrStaleFrame) {
				continue
			}
			if _, err := conn.WriteToUDP(pack(kindAck, flow, link.EncodeAck(ack)), from); err != nil {
				log.Fatal(err)
			}
			if !verified[flow] && rcv.Complete() {
				got, err := rcv.Datagram()
				if err != nil {
					log.Fatal(err)
				}
				if !bytes.Equal(got, want[flow]) {
					log.Fatalf("receiver: flow %d datagram corrupted", flow)
				}
				verified[flow] = true
			}
		}
	}()
	return addr, stop, done
}

func applyNoise(batches []link.Batch, air *channel.AWGN) []link.Batch {
	out := make([]link.Batch, len(batches))
	for i, b := range batches {
		out[i] = link.Batch{Block: b.Block, IDs: b.IDs, Symbols: air.Transmit(b.Symbols)}
	}
	return out
}

// deadline is the per-frame ACK wait; short because the "air" is a
// loopback socket.
func deadline() time.Time { return time.Now().Add(200 * time.Millisecond) }

func runSender(rx *net.UDPAddr, datagrams [][]byte) {
	conn, _ := udpSocket()
	p := spinal.DefaultParams()

	// One goroutine demultiplexes ACKs to per-flow channels; flow workers
	// interleave their frames over the shared socket.
	acks := make([]chan link.Ack, len(datagrams))
	for i := range acks {
		acks[i] = make(chan link.Ack, 8)
	}
	go func() {
		buf := make([]byte, 1<<16)
		for {
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				return // socket closed: transfer done
			}
			kind, flow, wire, ok := unpack(buf[:n])
			if !ok || kind != kindAck || flow < 0 || flow >= len(acks) {
				continue
			}
			ack, err := link.DecodeAck(wire)
			if err != nil {
				continue // corrupt ack; a fresher one will follow
			}
			select {
			case acks[flow] <- ack:
			default: // slow flow; a fresher ACK will follow
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	totalFrames, totalSymbols, totalBytes := 0, 0, 0
	for fi, datagram := range datagrams {
		wg.Add(1)
		go func() {
			defer wg.Done()
			snd := link.NewSender(datagram, p, 0)
			frames := 0
			// Bounded retry: a run of consecutive silent ack waits this
			// long means the peer is gone — exit with a diagnosis instead
			// of retransmitting forever.
			const maxAckTimeouts = 50
			timeouts := 0
			for !snd.Done() {
				f := snd.NextFrame()
				if f == nil {
					break
				}
				frames++
				if _, err := conn.WriteToUDP(pack(kindFrame, fi, link.EncodeFrame(f)), rx); err != nil {
					log.Fatal(err)
				}
				// Pause for feedback (§6): wait briefly for an ACK; resume
				// on timeout (the frame or its ACK may have been lost).
				timer := time.NewTimer(time.Until(deadline()))
				select {
				case ack := <-acks[fi]:
					snd.HandleAck(ack)
					timeouts = 0
				case <-timer.C:
					timeouts++
					if timeouts >= maxAckTimeouts {
						log.Fatalf("flow %d: no ACK in %d consecutive waits; receiver gone, giving up", fi, maxAckTimeouts)
					}
				}
				timer.Stop()
				if frames > 10000 {
					log.Fatalf("flow %d: giving up after 10000 frames", fi)
				}
			}
			mu.Lock()
			totalFrames += frames
			totalSymbols += snd.SymbolsSent()
			totalBytes += len(datagram)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("transferred %d bytes over %d flows in %d frames, %d symbols (%.3f bits/symbol, %.0f B/s goodput)\n",
		totalBytes, len(datagrams), totalFrames, totalSymbols,
		float64(totalBytes*8)/float64(totalSymbols),
		float64(totalBytes)/elapsed.Seconds())
}
